#pragma once

// Runtime invariant layer for the MD pipeline (the "checked build").
//
// A billion-atom trajectory is only as trustworthy as its weakest silent
// failure mode: one NaN force, one asymmetric neighbor pair or one lost
// ghost atom corrupts weeks of simulation without crashing anything. The
// checks in this library make those failures loud, early and attributable
// — every violation names the stage, the step and the offending atom.
//
// The layer has two faces:
//
//   * Plain functions (check_finite, check_neighbor_list, ...) that are
//     always compiled into ember_check and can be called directly — the
//     injected-fault tests under tests/check/ exercise them in every
//     build configuration.
//   * The EMBER_CHECK(...) hook macro used at StepLoop stage boundaries.
//     It expands to its argument only when the tree is configured with
//     -DEMBER_CHECKED=ON; the default build compiles every hook out
//     entirely, so Release pays zero cycles (the bench_headline contract).
//
// Violations throw check::InvariantViolation (an ember::Error), so a
// checked run aborts with a message like
//   [check] force @ step 812: non-finite force on atom 4711 (nan,0,0)
// instead of drifting on with corrupted state.

#include <span>
#include <string>

#include "common/error.hpp"
#include "common/vec3.hpp"
#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace ember::check {

class InvariantViolation : public Error {
 public:
  InvariantViolation(const char* stage, long step, const std::string& what);

  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] long step() const { return step_; }

 private:
  std::string stage_;
  long step_;
};

// NaN/Inf scan over the first `count` entries of `values` (positions or
// forces; `array_name` labels the report). Throws naming the first bad
// atom index and its value.
void check_finite(std::span<const Vec3> values, int count,
                  const char* array_name, const char* stage, long step);

// Structural validation of a freshly built neighbor list:
//   * the list covers exactly sys.nlocal() atoms,
//   * every neighbor index j lies in [0, sys.ntotal()),
//   * a self-pair (j == i) carries a nonzero periodic shift,
//   * every local-local pair is symmetric: (i -> j, shift) implies
//     (j -> i, -shift). Pairs whose j is a ghost copy have no local
//     mirror row and are bounds-checked only.
// Throws naming the first offending pair.
void check_neighbor_list(const md::NeighborList& nl, const md::System& sys,
                         const char* stage, long step);

// Serial/batched drivers own every atom: any ghost after an exchange is a
// bookkeeping bug. Throws if sys.ntotal() != sys.nlocal().
void check_no_ghosts(const md::System& sys, const char* stage, long step);

// Conservation check for exchanges that may move atoms between owners:
// `have` is the observed global (or per-driver) atom count, `expected`
// the count captured at setup. Throws on mismatch.
void check_atom_conservation(long have, long expected, const char* stage,
                             long step);

// Halo bookkeeping: the per-leg ghost counts recorded during the exchange
// must add up to the ghosts actually appended to the system.
void check_ghost_legs(std::span<const int> leg_counts, int nghost,
                      const char* stage, long step);

// Energy-drift tripwire. Armed with a reference total energy and a
// relative tolerance; observe() throws once the total drifts further than
// tol * max(|reference|, 1). Disarmed by default — thermostatted runs
// change energy legitimately, so the tripwire only arms when the run is
// known to conserve (NVE) and a tolerance is configured.
class DriftTripwire {
 public:
  void arm(double reference_energy, double rel_tol) {
    reference_ = reference_energy;
    tol_ = rel_tol;
    armed_ = rel_tol > 0.0;
  }
  void disarm() { armed_ = false; }
  [[nodiscard]] bool armed() const { return armed_; }

  void observe(double total_energy, long step) const;

 private:
  double reference_ = 0.0;
  double tol_ = 0.0;
  bool armed_ = false;
};

// Tolerance for the StepLoop-embedded tripwire, read once from the
// EMBER_CHECK_DRIFT_TOL environment variable (relative drift, e.g. 1e-4);
// 0 (the default, or unset/unparsable) leaves the tripwire disarmed.
[[nodiscard]] double drift_tolerance_from_env();

}  // namespace ember::check

// Stage-boundary hook: expands to the statement under EMBER_CHECKED=ON,
// to nothing otherwise. Variadic so call arguments may contain commas.
#if defined(EMBER_CHECKED)
#define EMBER_CHECK(...) __VA_ARGS__
#else
#define EMBER_CHECK(...) ((void)0)
#endif
