#include "rng.hpp"

#include <cmath>

namespace ember {

double Rng::gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  // Marsaglia polar: draw (u,v) in the unit disk, transform both.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gauss_ = v * factor;
  have_gauss_ = true;
  return u * factor;
}

}  // namespace ember
