#pragma once

// Deterministic, splittable pseudo-random number generation.
//
// MD thermostats, amorphous-sample preparation and the ParSplice segment
// generators all need independent, reproducible streams — one per rank /
// worker — so we use xoshiro256++ seeded through splitmix64. A Rng can be
// forked into statistically independent children (`split`), which is how
// per-rank streams are derived from a single run seed.

#include <cstdint>

namespace ember {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  // xoshiro256++ core step.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's unbiased bounded generation (rejection on the low word).
    const std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Marsaglia polar method (caches the second deviate).
  double gaussian();

  // Fork a statistically independent child stream. The child is seeded from
  // this stream's output mixed with the stream index, so split(i) is
  // reproducible and distinct for each i.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    Rng child;
    std::uint64_t s = state_[0] ^ (stream * 0xd2b74407b1ce6e93ULL + 0x8bb84b93962eacc9ULL);
    child.reseed(s ^ rotl(state_[2], 17));
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace ember
