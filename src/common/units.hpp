#pragma once

// Physical constants and unit conventions.
//
// ember uses LAMMPS "metal" units throughout:
//   length  : Angstrom
//   energy  : eV
//   time    : picosecond
//   mass    : g/mol (atomic mass units)
//   pressure: bar (via the conversion factor below)
//   temperature: Kelvin
//
// In these units F = m a requires the mass-velocity conversion constant
// mvv2e: kinetic energy = 1/2 m v^2 * MVV2E with v in A/ps and m in g/mol.

namespace ember::units {

// Boltzmann constant [eV/K].
inline constexpr double kB = 8.617333262e-5;

// Kinetic-energy conversion: (g/mol)(A/ps)^2 -> eV.
inline constexpr double MVV2E = 1.0364269e-4;

// Pressure conversion: eV/A^3 -> bar.
inline constexpr double EVA3_TO_BAR = 1.602176634e6;

// 1 Mbar in bar.
inline constexpr double MBAR = 1.0e6;

// Carbon atomic mass [g/mol].
inline constexpr double MASS_CARBON = 12.011;

// Diamond-cubic lattice constant of carbon at ambient conditions [A].
inline constexpr double A0_DIAMOND = 3.567;

// Force from energy gradient needs no conversion (eV/A), but acceleration
// a = F / m must be scaled by 1/MVV2E to be in A/ps^2.
inline constexpr double FORCE_TO_ACCEL = 1.0 / MVV2E;

}  // namespace ember::units
