#pragma once

// Annotated mutex / condition-variable wrappers (DESIGN.md §14).
//
// std::mutex is invisible to Clang Thread Safety Analysis: locking it
// through std::lock_guard teaches the analysis nothing, so GUARDED_BY
// contracts on the data it protects cannot be checked. These thin
// wrappers carry the capability attributes; they add no state and no
// indirection over the standard primitives (every method is a direct
// forward that inlines away).
//
// Idioms the analysis can follow, used throughout the threaded
// subsystems:
//
//   ember::Mutex mu;
//   int value EMBER_GUARDED_BY(mu);
//
//   { ember::LockGuard lock(mu); value = 1; }          // scoped
//
//   ember::CondVar cv;
//   { ember::LockGuard lock(mu);
//     while (!ready_locked()) cv.wait(mu); }           // explicit loop
//
// CondVar waits take the Mutex itself (condition_variable_any), not a
// std::unique_lock, so the capability stays visible across the wait;
// predicates become explicit while-loops whose condition reads are
// analyzed with the lock held — exactly the discipline the analysis
// enforces (no predicate checks outside the lock).

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace ember {

class CondVar;

class EMBER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EMBER_ACQUIRE() { m_.lock(); }
  void unlock() EMBER_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() EMBER_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex m_;
};

// RAII scoped lock over ember::Mutex (std::lock_guard analogue). The
// analysis treats it as a scoped capability: the constructor acquires,
// the destructor releases, and every path out of the scope (return,
// throw, break) releases exactly once.
class EMBER_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) EMBER_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() EMBER_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on ember::Mutex directly. wait()
// requires the capability, so a predicate loop around it is analyzed
// with the lock held; notify needs no lock (callers hold it anyway when
// publishing the state change, which is the pattern the subsystems use).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases mu, blocks, reacquires before returning.
  // Spurious wakeups happen: always call from a while-loop that
  // rechecks the guarded predicate.
  void wait(Mutex& mu) EMBER_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // condition_variable_any accepts any BasicLockable — here the
  // annotated Mutex itself, which keeps the capability in view of the
  // analysis across the wait (a std::unique_lock would hide it).
  std::condition_variable_any cv_;
};

}  // namespace ember
