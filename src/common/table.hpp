#pragma once

// Minimal fixed-width text-table printer used by the benchmark harnesses to
// emit the rows/series of each paper table and figure in a uniform format.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ember {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += '+';
    }
    os << rule << '\n';
    for (const auto& row : rows_) print_row(os, row, widths);
  }

 private:
  template <typename T>
  static std::string to_cell(T&& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(value));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      std::ostringstream os;
      os << std::setprecision(4) << value;
      return os.str();
    } else {
      std::ostringstream os;
      os << value;
      return os.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << ' ';
      if (c + 1 < row.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ember
