#pragma once

// Wall-clock timing utilities.
//
// The MD drivers report a LAMMPS-style breakdown (Pair / Neigh / Comm /
// Other), which SC Fig. 4 is built from. The taxonomy is a *closed* enum:
// TimerSet accumulates into a fixed array indexed by TimerCategory, so
// the per-step hot path does no string hashing, no map lookups and no
// allocation, and iteration order is the declaration order below, always.
// (Free-form string keys were PR-3's design; PR 4 closed the set.)

#include <algorithm>
#include <array>
#include <chrono>
#include <span>

namespace ember {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// The canonical step-time taxonomy (declaration order == report order).
// The paper's Fig. 4 presentation names ("SNAP", "MPI Comm") are a
// display mapping applied once in the bench layer via md::fig4_label.
enum class TimerCategory : int { Pair = 0, Neigh, Comm, Other, Dump };

inline constexpr int kNumTimerCategories = 5;

inline constexpr std::array<TimerCategory, kNumTimerCategories>
    kTimerCategories = {TimerCategory::Pair, TimerCategory::Neigh,
                        TimerCategory::Comm, TimerCategory::Other,
                        TimerCategory::Dump};

[[nodiscard]] constexpr const char* timer_category_name(TimerCategory c) {
  switch (c) {
    case TimerCategory::Pair: return "Pair";
    case TimerCategory::Neigh: return "Neigh";
    case TimerCategory::Comm: return "Comm";
    case TimerCategory::Other: return "Other";
    case TimerCategory::Dump: return "Dump";
  }
  return "?";
}

// Accumulates elapsed seconds into the fixed category buckets.
class TimerSet {
 public:
  void add(TimerCategory category, double seconds) {
    totals_[index(category)] += seconds;
  }

  [[nodiscard]] double total(TimerCategory category) const {
    return totals_[index(category)];
  }

  [[nodiscard]] double grand_total() const {
    double sum = 0.0;
    for (const double s : totals_) sum += s;
    return sum;
  }

  [[nodiscard]] double fraction(TimerCategory category) const {
    const double all = grand_total();
    return all > 0.0 ? total(category) / all : 0.0;
  }

  // Per-thread load-balance bookkeeping: drivers feed the pool's busy
  // seconds of each parallel sweep here, and the Fig.-4-style tables
  // report max/avg as the imbalance ratio (1.0 = perfectly balanced).
  struct ThreadStats {
    double min_total = 0.0;  // sum over sweeps of the fastest worker
    double max_total = 0.0;  // sum over sweeps of the slowest worker
    double sum_total = 0.0;  // sum over sweeps and workers
    long sweeps = 0;
    int nthreads = 0;
  };

  void add_thread_times(TimerCategory category,
                        std::span<const double> busy_seconds) {
    if (busy_seconds.empty()) return;
    ThreadStats& st = thread_stats_[index(category)];
    st.min_total += *std::min_element(busy_seconds.begin(), busy_seconds.end());
    st.max_total += *std::max_element(busy_seconds.begin(), busy_seconds.end());
    for (const double s : busy_seconds) st.sum_total += s;
    st.sweeps += 1;
    st.nthreads = static_cast<int>(busy_seconds.size());
  }

  // max/avg busy time across workers; 1.0 means perfect balance, 0.0
  // means no threaded sweeps were recorded for the category.
  [[nodiscard]] double imbalance(TimerCategory category) const {
    const ThreadStats& st = thread_stats_[index(category)];
    if (st.nthreads == 0) return 0.0;
    const double avg = st.sum_total / st.nthreads;
    return avg > 0.0 ? st.max_total / avg : 0.0;
  }

  [[nodiscard]] const ThreadStats& thread_stats(TimerCategory category) const {
    return thread_stats_[index(category)];
  }

  void clear() {
    totals_.fill(0.0);
    thread_stats_.fill(ThreadStats{});
  }

 private:
  static constexpr std::size_t index(TimerCategory c) {
    return static_cast<std::size_t>(c);
  }

  std::array<double, kNumTimerCategories> totals_{};
  std::array<ThreadStats, kNumTimerCategories> thread_stats_{};
};

// RAII helper: adds the scope's elapsed time to a TimerSet bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimerSet& set, TimerCategory category)
      : set_(set), category_(category) {}
  ~ScopedTimer() { set_.add(category_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerSet& set_;
  TimerCategory category_;
  WallTimer timer_;
};

}  // namespace ember
