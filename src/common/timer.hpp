#pragma once

// Wall-clock timing utilities.
//
// The parallel MD driver reports a LAMMPS-style breakdown (Pair / Comm /
// Other), which SC Fig. 4 is built from; TimerSet accumulates named
// categories and computes percentages.

#include <algorithm>
#include <chrono>
#include <map>
#include <span>
#include <string>

namespace ember {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates elapsed seconds into named buckets.
class TimerSet {
 public:
  void add(const std::string& category, double seconds) {
    totals_[category] += seconds;
  }

  [[nodiscard]] double total(const std::string& category) const {
    auto it = totals_.find(category);
    return it == totals_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double grand_total() const {
    double sum = 0.0;
    for (const auto& [name, secs] : totals_) sum += secs;
    return sum;
  }

  [[nodiscard]] double fraction(const std::string& category) const {
    const double all = grand_total();
    return all > 0.0 ? total(category) / all : 0.0;
  }

  [[nodiscard]] const std::map<std::string, double>& totals() const {
    return totals_;
  }

  // Per-thread load-balance bookkeeping: drivers feed the pool's busy
  // seconds of each parallel sweep here, and the Fig.-4-style tables
  // report max/avg as the imbalance ratio (1.0 = perfectly balanced).
  struct ThreadStats {
    double min_total = 0.0;  // sum over sweeps of the fastest worker
    double max_total = 0.0;  // sum over sweeps of the slowest worker
    double sum_total = 0.0;  // sum over sweeps and workers
    long sweeps = 0;
    int nthreads = 0;
  };

  void add_thread_times(const std::string& category,
                        std::span<const double> busy_seconds) {
    if (busy_seconds.empty()) return;
    ThreadStats& st = thread_stats_[category];
    st.min_total += *std::min_element(busy_seconds.begin(), busy_seconds.end());
    st.max_total += *std::max_element(busy_seconds.begin(), busy_seconds.end());
    for (const double s : busy_seconds) st.sum_total += s;
    st.sweeps += 1;
    st.nthreads = static_cast<int>(busy_seconds.size());
  }

  // max/avg busy time across workers; 1.0 means perfect balance, 0.0
  // means no threaded sweeps were recorded for the category.
  [[nodiscard]] double imbalance(const std::string& category) const {
    auto it = thread_stats_.find(category);
    if (it == thread_stats_.end() || it->second.nthreads == 0) return 0.0;
    const double avg = it->second.sum_total / it->second.nthreads;
    return avg > 0.0 ? it->second.max_total / avg : 0.0;
  }

  [[nodiscard]] const std::map<std::string, ThreadStats>& thread_stats()
      const {
    return thread_stats_;
  }

  void clear() {
    totals_.clear();
    thread_stats_.clear();
  }

 private:
  std::map<std::string, double> totals_;
  std::map<std::string, ThreadStats> thread_stats_;
};

// RAII helper: adds the scope's elapsed time to a TimerSet bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimerSet& set, std::string category)
      : set_(set), category_(std::move(category)) {}
  ~ScopedTimer() { set_.add(category_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerSet& set_;
  std::string category_;
  WallTimer timer_;
};

}  // namespace ember
