#pragma once

// Wall-clock timing utilities.
//
// The parallel MD driver reports a LAMMPS-style breakdown (Pair / Comm /
// Other), which SC Fig. 4 is built from; TimerSet accumulates named
// categories and computes percentages.

#include <chrono>
#include <map>
#include <string>

namespace ember {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates elapsed seconds into named buckets.
class TimerSet {
 public:
  void add(const std::string& category, double seconds) {
    totals_[category] += seconds;
  }

  [[nodiscard]] double total(const std::string& category) const {
    auto it = totals_.find(category);
    return it == totals_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double grand_total() const {
    double sum = 0.0;
    for (const auto& [name, secs] : totals_) sum += secs;
    return sum;
  }

  [[nodiscard]] double fraction(const std::string& category) const {
    const double all = grand_total();
    return all > 0.0 ? total(category) / all : 0.0;
  }

  [[nodiscard]] const std::map<std::string, double>& totals() const {
    return totals_;
  }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

// RAII helper: adds the scope's elapsed time to a TimerSet bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimerSet& set, std::string category)
      : set_(set), category_(std::move(category)) {}
  ~ScopedTimer() { set_.add(category_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerSet& set_;
  std::string category_;
  WallTimer timer_;
};

}  // namespace ember
