#pragma once

// Clang Thread Safety Analysis attribute macros (DESIGN.md §14).
//
// Every threaded subsystem (parallel/thread_pool, obs/metrics, obs/trace,
// io/writer, comm/communicator) declares its locking contract with these
// macros: a guarded member names the mutex that protects it, a helper
// that expects the lock held says EMBER_REQUIRES, and RAII guards are
// scoped capabilities. On clang the contract is checked at compile time
// (`-Wthread-safety -Wthread-safety-beta`, promoted to error by the CI
// clang-thread-safety job and the EMBER_THREAD_SAFETY CMake option); on
// other compilers the macros expand to nothing, so the annotations cost
// zero and gcc builds are unaffected.
//
// The spellings follow the official Clang capability nomenclature
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Use the
// ember::Mutex / ember::LockGuard / ember::CondVar wrappers in
// common/mutex.hpp rather than std::mutex so the analysis actually sees
// acquire/release events.

#if defined(__clang__)
#define EMBER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EMBER_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// Type-level: this class is a lock (capability) / RAII lock holder.
#define EMBER_CAPABILITY(x) EMBER_THREAD_ANNOTATION(capability(x))
#define EMBER_SCOPED_CAPABILITY EMBER_THREAD_ANNOTATION(scoped_lockable)

// Data members: reading or writing requires holding the named mutex
// (GUARDED_BY for the value, PT_GUARDED_BY for data behind a pointer).
#define EMBER_GUARDED_BY(x) EMBER_THREAD_ANNOTATION(guarded_by(x))
#define EMBER_PT_GUARDED_BY(x) EMBER_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold / must not hold the named mutexes.
#define EMBER_REQUIRES(...) \
  EMBER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EMBER_REQUIRES_SHARED(...) \
  EMBER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EMBER_EXCLUDES(...) EMBER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release the capability themselves (the
// Mutex wrapper's own lock/unlock, and scoped-guard constructors).
#define EMBER_ACQUIRE(...) \
  EMBER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EMBER_ACQUIRE_SHARED(...) \
  EMBER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define EMBER_RELEASE(...) \
  EMBER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EMBER_RELEASE_SHARED(...) \
  EMBER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define EMBER_TRY_ACQUIRE(...) \
  EMBER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Escape hatches. EMBER_NO_THREAD_SAFETY_ANALYSIS is the blanket
// suppression and is banned in src/ by policy (ISSUE 10 acceptance:
// zero blanket suppressions) — it exists only so test doubles and
// benchmark harnesses can opt out explicitly and greppably.
#define EMBER_RETURN_CAPABILITY(x) EMBER_THREAD_ANNOTATION(lock_returned(x))
#define EMBER_ASSERT_CAPABILITY(x) \
  EMBER_THREAD_ANNOTATION(assert_capability(x))
#define EMBER_NO_THREAD_SAFETY_ANALYSIS \
  EMBER_THREAD_ANNOTATION(no_thread_safety_analysis)
