#include "error.hpp"

#include <sstream>

namespace ember {

void fail_requirement(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace ember
