#pragma once

// Error handling: ember throws ember::Error for recoverable/user-facing
// failures (bad input files, inconsistent parameters) and uses
// EMBER_REQUIRE for internal invariants that indicate a programming error.

#include <source_location>
#include <stdexcept>
#include <string>

namespace ember {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void fail_requirement(const char* expr, const char* file, int line,
                                   const std::string& message);

}  // namespace ember

#define EMBER_REQUIRE(cond, message)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ember::fail_requirement(#cond, __FILE__, __LINE__, (message));   \
    }                                                                    \
  } while (0)
