#pragma once

// Cache-line-aligned allocation for SIMD-consumable arrays.
//
// The SNAP Symmetric/Simd kernels store U/Y/dU as split re/im double
// planes and the V8 SIMD backend issues *aligned* vector loads against
// them (64-byte alignment covers a full AVX-512 register and one cache
// line; every AVX2 (32-byte) access into a 64-byte-aligned plane whose
// offsets are lane-width multiples is aligned too). std::vector's default
// allocator only guarantees alignof(double) = 8, so the planes use
// aligned_vector<double> below.
//
// AlignedAllocator goes through std::aligned_alloc rather than the
// aligned operator new so the repo-wide no-naked-new rule keeps a single
// code path; aligned_alloc requires the byte count to be a multiple of
// the alignment, so sizes are rounded up.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace ember {

inline constexpr std::size_t kCacheLineBytes = 64;

// True when p is aligned to `align` bytes (align must be a power of two).
inline bool is_aligned(const void* p, std::size_t align = kCacheLineBytes) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

template <class T, std::size_t Align = kCacheLineBytes>
class AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

 public:
  using value_type = T;
  static constexpr std::size_t alignment = Align;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = ((n * sizeof(T) + Align - 1) / Align) * Align;
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T, kCacheLineBytes>>;

}  // namespace ember
