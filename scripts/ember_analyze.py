#!/usr/bin/env python3
"""ember_analyze: flow-aware concurrency/determinism checks for src/.

The sibling of ember_lint.py (DESIGN.md section 14). ember_lint rules
are line- or include-local; these three need a model of scopes and
control flow — which brace block a statement lives in, which function
body it belongs to, what condition guards it — that clang-tidy's
matcher language cannot express either:

  collective-symmetry
      Transport collectives (barrier / allreduce_* / broadcast /
      gather* / run_gather / global_state) are rendezvous points: every
      rank must reach the same sequence or the mesh deadlocks. In
      driver code (StepStages overrides, comm-farm loops — anything
      outside src/comm/ that talks to a Transport) two shapes break
      that symmetry and both are flagged:
        (a) a conditional early `return` lexically before a later
            collective in the same function — a rank that takes the
            branch never shows up at the rendezvous;
        (b) a collective nested under a rank-dependent condition
            (`rank`, `rank_`, `rank()`, `is_root`) — only some ranks
            enter the call at all.
      src/comm/ itself is exempt: the backends implement collectives
      out of rank-asymmetric parts (rank-0 orchestration) by design.
  blocking-under-lock
      While a lock scope (ember::LockGuard, std::lock_guard /
      unique_lock / scoped_lock) is open, no call that can block on
      another thread or on the filesystem: io::Writer submit()/drain(),
      Transport send*/recv*, ThreadPool parallel_for, thread join(),
      or opening an std::ofstream/fopen. A blocking call under a lock
      turns the lock into a convoy (every contender stalls behind the
      I/O) and is one ordering edge away from deadlock. CondVar wait()
      is exempt — releasing the lock while blocked is its contract.
  unordered-iteration-reduction
      In src/md, src/snap and src/io, no range-for over a
      std::unordered_map / std::unordered_set that feeds an
      accumulation (+=, -=, *=) or an output stream (<<, push_back,
      submit). Hash iteration order is unspecified and libstdc++
      changes it with load factor and seed: a sum or a dump fed from
      one is the classic silently-nondeterministic reduction. Iterate
      a sorted copy, or use std::map / a vector.

Suppressions must carry a reason (same contract ember_lint enforces):

    // ember-analyze: allow(<rule-id>) -- <why this site is exempt>

on the offending line or in the comment block directly above it. An
allow() without a reason is itself reported.

Usage: scripts/ember_analyze.py [paths...]      (default: src)
       scripts/ember_analyze.py --list-rules
Exit status 1 when findings are reported, 0 when clean, 2 on bad paths.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "collective-symmetry":
        "rank-conditional path around a Transport collective (mesh deadlock)",
    "blocking-under-lock":
        "blocking call (submit/drain/send/recv/join/ofstream) inside a lock scope",
    "unordered-iteration-reduction":
        "unordered_{map,set} iteration feeding a reduction or output",
}

SOURCE_SUFFIXES = {".cpp", ".cc", ".hpp", ".h"}

ALLOW_RE = re.compile(
    r"ember-analyze:\s*allow\((?P<rule>[a-z-]+)\)(?:\s*--\s*(?P<reason>\S.*))?")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> str:
    """Blank out comments, string and char literals, preserving layout
    (same contract as ember_lint.strip_code: offsets stay exact)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            if quote == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i)
                    end = (end + len(close)) if end != -1 else n
                    for k in range(i, min(end, n)):
                        if text[k] != "\n":
                            out[k] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def allowed(raw_lines: list[str], line: int, rule: str,
            findings: list[Finding], path: Path) -> bool:
    """True when line (1-based) carries a matching allow annotation, on
    the line itself or in the contiguous comment block directly above."""
    candidates = [line]
    k = line - 1
    while k >= 1 and raw_lines[k - 1].lstrip().startswith("//"):
        candidates.append(k)
        k -= 1
    for cand in candidates:
        m = ALLOW_RE.search(raw_lines[cand - 1])
        if m and m.group("rule") == rule:
            if not m.group("reason"):
                findings.append(Finding(
                    path, cand, rule,
                    "allow() annotation must carry a reason: "
                    "`// ember-analyze: allow(%s) -- <reason>`" % rule))
                return True  # suppress the finding, report the bare allow
            return True
    return False


# ------------------------------------------------------------ scope model ----

CONTROL_KEYWORDS = {"if", "while", "for", "switch", "catch", "do", "else"}


class Block:
    """One brace block in the stripped code.

    kind is 'function' (a function, method or lambda body), 'control'
    (the block of an if/else/while/for/switch/catch/do) or 'plain'
    (a bare scope). cond holds the text inside the controlling (...)
    for control blocks — for an `else` block, the owning if's condition.
    """

    __slots__ = ("open", "close", "kind", "cond", "parent", "sig_open")

    def __init__(self, open_pos: int, close_pos: int, kind: str,
                 cond: str, parent: "Block | None", sig_open: int = -1):
        self.open = open_pos
        self.close = close_pos
        self.kind = kind
        self.cond = cond
        self.parent = parent
        # For function blocks: position of the parameter list's '(' when
        # known, so parameters count as inside the function's scope.
        self.sig_open = sig_open if sig_open >= 0 else open_pos


IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _preceding_ident(code: str, pos: int) -> str:
    """The identifier ending directly before pos (skipping whitespace)."""
    j = pos - 1
    while j >= 0 and code[j].isspace():
        j -= 1
    end = j + 1
    while j >= 0 and (code[j].isalnum() or code[j] == "_"):
        j -= 1
    return code[j + 1:end]


def _matching_open_paren(code: str, close: int) -> int:
    depth = 0
    for i in range(close, -1, -1):
        if code[i] == ")":
            depth += 1
        elif code[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _classify_block(code: str, open_pos: int) -> tuple[str, str, int]:
    """Classify the brace at open_pos: (kind, condition-text, sig_open)."""
    j = open_pos - 1
    while j >= 0 and code[j].isspace():
        j -= 1
    if j < 0:
        return "plain", "", -1
    # `do {` / `else {` / `try {`: keyword directly before the brace.
    word = _preceding_ident(code, j + 1)
    if word == "do":
        return "control", "", -1
    if word == "else":
        # Walk back over `else` to the owning `if (...)` condition.
        k = j - len("else")
        close = code.rfind(")", 0, k + 1)
        cond = ""
        if close != -1:
            op = _matching_open_paren(code, close)
            if op != -1 and _preceding_ident(code, op) == "if":
                cond = code[op + 1:close]
        return "control", cond, -1
    if word == "try":
        return "plain", "", -1
    # Skip trailing function decorations back to a `)` if present.
    while True:
        word = _preceding_ident(code, j + 1)
        if word in ("const", "noexcept", "override", "final", "mutable"):
            j -= len(word)
            while j >= 0 and code[j].isspace():
                j -= 1
            continue
        break
    if j >= 0 and code[j] == ")":
        op = _matching_open_paren(code, j)
        if op == -1:
            return "plain", "", -1
        kw = _preceding_ident(code, op)
        if kw in CONTROL_KEYWORDS:
            return "control", code[op + 1:j], -1
        # A lambda introducer `[...](...)` or a named function/method.
        return "function", "", op
    if j >= 0 and code[j] == "]":
        return "function", "", -1  # capture-default lambda with no parens
    return "plain", "", -1


def parse_blocks(code: str) -> list[Block]:
    """All brace blocks, classified, with parent links."""
    blocks: list[Block] = []
    stack: list[Block] = []
    for i, c in enumerate(code):
        if c == "{":
            kind, cond, sig_open = _classify_block(code, i)
            blk = Block(i, len(code), kind, cond,
                        stack[-1] if stack else None, sig_open)
            blocks.append(blk)
            stack.append(blk)
        elif c == "}":
            if stack:
                stack.pop().close = i
    return blocks


def innermost_block(blocks: list[Block], pos: int) -> Block | None:
    best = None
    for b in blocks:
        if b.open < pos < b.close:
            if best is None or b.open > best.open:
                best = b
    return best


def enclosing_function(block: Block | None) -> Block | None:
    while block is not None and block.kind != "function":
        block = block.parent
    return block


# ------------------------------------------------- rule 1: collectives ----

# A collective rendezvous on the Transport API (or a driver method that
# is one: gather/global_state do allreduces/sends on every rank).
COLLECTIVE_RE = re.compile(
    r"(?:\.|->|\b)"
    r"(barrier|allreduce_\w+|broadcast|gather(?:_global)?|run_gather|"
    r"global_state)\s*\(")

RANK_COND_RE = re.compile(r"\brank_?\b|\bis_root\b")
RETURN_RE = re.compile(r"\breturn\b")

# The rule applies to code that talks to a Transport / comm Context;
# pure compute files (e.g. the SIMD kernels' V::broadcast) are out of
# scope by this gate, and src/comm/ backends are out of scope by path.
COMM_SCOPED_RE = re.compile(r"\bcomm::|Transport\s*&|\bcomm_\b")


def _cond_chain(block: Block | None, fn: Block) -> list[Block]:
    """Control blocks enclosing `block`, innermost first, stopping at fn."""
    chain = []
    while block is not None and block is not fn:
        if block.kind == "control":
            chain.append(block)
        if block.kind == "function":
            break
        block = block.parent
    return chain


def check_collective_symmetry(path, raw_lines, code, findings):
    posix = path.as_posix()
    if "src/comm/" in posix or posix.startswith("src/comm"):
        return
    if not COMM_SCOPED_RE.search(code):
        return
    blocks = parse_blocks(code)

    collectives = []  # (pos, name, fn-block)
    for m in COLLECTIVE_RE.finditer(code):
        blk = innermost_block(blocks, m.start())
        fn = enclosing_function(blk)
        if fn is None:
            continue
        collectives.append((m.start(), m.group(1), blk, fn))

    # (b) collective under a rank-dependent condition.
    for pos, name, blk, fn in collectives:
        for ctl in _cond_chain(blk, fn):
            if RANK_COND_RE.search(ctl.cond):
                ln = line_of(code, pos)
                if not allowed(raw_lines, ln, "collective-symmetry",
                               findings, path):
                    findings.append(Finding(
                        path, ln, "collective-symmetry",
                        f"collective `{name}(...)` guarded by the "
                        "rank-dependent condition at line "
                        f"{line_of(code, ctl.open)}: ranks that skip the "
                        "branch never reach the rendezvous and the mesh "
                        "deadlocks"))
                break

    # (a) conditional early return before a later collective in the
    # same function.
    by_fn: dict[int, list[tuple[int, str]]] = {}
    for pos, name, _blk, fn in collectives:
        by_fn.setdefault(fn.open, []).append((pos, name))
    for m in RETURN_RE.finditer(code):
        blk = innermost_block(blocks, m.start())
        fn = enclosing_function(blk)
        if fn is None or fn.open not in by_fn:
            continue
        chain = _cond_chain(blk, fn)
        if not chain:
            continue  # unconditional return: every rank takes it
        later = [(p, n) for p, n in by_fn[fn.open]
                 if p > m.start() and p < fn.close]
        # A collective inside the same conditional block as the return
        # is skipped together with it — only flag rendezvous points the
        # fall-through path still reaches.
        later = [(p, n) for p, n in later if not (chain[0].open < p < chain[0].close)]
        if not later:
            continue
        ln = line_of(code, m.start())
        if not allowed(raw_lines, ln, "collective-symmetry", findings, path):
            p, n = later[0]
            findings.append(Finding(
                path, ln, "collective-symmetry",
                f"conditional early return skips the collective `{n}(...)` "
                f"at line {line_of(code, p)}: a rank taking this branch "
                "never reaches the rendezvous — restructure so every rank "
                "executes the same collective sequence"))


# ---------------------------------------------- rule 2: blocking-under-lock ----

LOCK_DECL_RE = re.compile(
    r"\b(?:std::lock_guard|std::unique_lock|std::scoped_lock|"
    r"(?:ember::)?LockGuard)\s*(?:<[^;>]*>)?\s+(\w+)\s*[({]")

BLOCKING_CALL_RE = re.compile(
    r"(?:\.|->)\s*(submit|drain|send|recv|send_bytes|recv_bytes|"
    r"recv_bytes_any|parallel_for|join)\s*\(|"
    r"\bstd::(?:ofstream|fstream)\b|\bfopen\s*\(")


def check_blocking_under_lock(path, raw_lines, code, findings):
    blocks = parse_blocks(code)
    for m in LOCK_DECL_RE.finditer(code):
        scope = innermost_block(blocks, m.start())
        if scope is None:
            continue
        # The lock is held from its declaration to the end of its block.
        region_start, region_end = m.end(), scope.close
        for bm in BLOCKING_CALL_RE.finditer(code, region_start, region_end):
            # Blocking calls inside a nested lambda body are deferred
            # work, not calls made while this lock is held.
            bblk = innermost_block(blocks, bm.start())
            fn_here = enclosing_function(innermost_block(blocks, m.start()))
            if enclosing_function(bblk) is not fn_here:
                continue
            what = (bm.group(1) or
                    bm.group(0).replace("std::", "").split("(")[0]).strip()
            ln = line_of(code, bm.start())
            if not allowed(raw_lines, ln, "blocking-under-lock",
                           findings, path):
                findings.append(Finding(
                    path, ln, "blocking-under-lock",
                    f"`{what}` called while `{m.group(1)}` (declared line "
                    f"{line_of(code, m.start())}) holds its lock: move the "
                    "blocking call out of the critical section — copy the "
                    "state out under the lock, then block"))


# ------------------------------- rule 3: unordered-iteration-reduction ----

UNORDERED_DIRS = ("src/md", "src/snap", "src/io")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*>\s*[&*]?\s*(\w+)")

ACCUMULATE_RE = re.compile(
    r"[+\-*|&^]=|<<|\bpush_back\s*\(|\bsubmit\s*\(|\bwrite\w*\s*\(|"
    r"\binsert\s*\(|\bemplace\w*\s*\(")


def check_unordered_iteration(path, raw_lines, code, findings):
    # The determinism contract covers the physics + output pipeline
    # (src/md, src/snap, src/io); obs/bench bookkeeping may hash freely.
    # Files outside src/ (the self-test fixtures) are always in scope.
    posix = path.as_posix()
    if "src/" in posix and not any(d in posix for d in UNORDERED_DIRS):
        return
    blocks = parse_blocks(code)
    decls = [(m.start(), m.group(1)) for m in UNORDERED_DECL_RE.finditer(code)]
    if not decls:
        return

    def fn_of(pos: int) -> Block | None:
        """Innermost function block whose scope (parameter list included)
        contains pos."""
        best = None
        for b in blocks:
            if b.kind == "function" and b.sig_open < pos < b.close:
                if best is None or b.open > best.open:
                    best = b
        return best

    def visible_vars(fn: Block | None) -> set[str]:
        """Names declared at file/class scope, or in `fn` itself or an
        enclosing function (so a sibling function's local of the same
        name never leaks in)."""
        out = set()
        for pos, name in decls:
            owner = fn_of(pos)
            if owner is None:
                out.add(name)
                continue
            walk = fn
            while walk is not None:
                if walk is owner:
                    out.add(name)
                    break
                walk = walk.parent
        return out
    # Range-for over an unordered container (directly or via a declared
    # variable), whose body accumulates or emits.
    for m in re.finditer(r"\bfor\s*\(", code):
        close = _find_matching(code, m.end() - 1, "(", ")")
        head = code[m.end():close]
        # The range-for separator is a single ':' (never the '::' of a
        # qualified name in the declaration or range expression).
        sep = re.search(r"(?<!:):(?!:)", head)
        if sep is None:
            continue
        range_expr = head[sep.end():].strip()
        range_idents = set(IDENT_RE.findall(range_expr))
        in_scope = visible_vars(fn_of(m.start()))
        is_unordered = ("unordered_map" in range_expr or
                        "unordered_set" in range_expr or
                        bool(range_idents & in_scope))
        if not is_unordered:
            continue
        body_open = code.find("{", close)
        if body_open < 0:
            continue
        body_close = _find_matching(code, body_open, "{", "}")
        body = code[body_open:body_close]
        am = ACCUMULATE_RE.search(body)
        if am is None:
            continue
        ln = line_of(code, m.start())
        if not allowed(raw_lines, ln, "unordered-iteration-reduction",
                       findings, path):
            findings.append(Finding(
                path, ln, "unordered-iteration-reduction",
                f"range-for over unordered container `{range_expr}` feeds "
                f"an accumulation/output at line "
                f"{line_of(code, body_open + am.start())}: hash order is "
                "unspecified — iterate a sorted copy or use std::map"))


def _find_matching(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return len(text)


CHECKS = [
    check_collective_symmetry,
    check_blocking_under_lock,
    check_unordered_iteration,
]


def analyze_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.split("\n")
    code = strip_code(text)
    findings: list[Finding] = []
    for check in CHECKS:
        check(path, raw_lines, code, findings)
    return findings


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(f for f in sorted(path.rglob("*"))
                         if f.suffix in SOURCE_SUFFIXES and f.is_file())
        else:
            print(f"ember_analyze: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to analyze (default: src)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:32s} {desc}")
        return 0

    findings: list[Finding] = []
    files = collect_files(args.paths or ["src"])
    for f in files:
        findings.extend(analyze_file(f))

    findings.sort(key=lambda fi: (str(fi.path), fi.line, fi.rule))
    for fi in findings:
        print(fi)
    if findings:
        print(f"ember_analyze: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"ember_analyze: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(141)
