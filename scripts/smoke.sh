#!/usr/bin/env bash
# Full pre-merge smoke run:
#   1. Lint + analyze: ember_lint.py (project invariants) and
#      ember_analyze.py (flow-aware collective-symmetry / lock-discipline
#      / determinism rules) over src/, both with their self-tests, plus
#      clang-tidy when available (the minimal dev container ships only
#      gcc; the wrapper prints the skip reason in that case).
#   2. Release build + the complete test suite (the tier-1 gate).
#   3. ThreadSanitizer build + the thread-parity tests (the SNAP force
#      engine is threaded; TSan pins the no-shared-mutable-state design)
#      and the AsyncIo suite (the writer thread's queue/backpressure/
#      error handshake is exactly the kind of code TSan exists for).
#   4. bench_record: re-measure the headline kernel curves and refresh
#      BENCH_headline.json at the repo root (validated as JSON).
#   5. Observability smoke: a traced ember_run demo; the Chrome trace
#      and the metrics dump must both parse.
#   6. Socket transport: the forked-process comm subset (ctest -R
#      Socket) plus the multi-process elastic-rescaling example.
#   7. Trajectory round-trip: the async-writer demo dumps a compressed
#      EMBT1 trajectory and streams it back through `analyze
#      trajectory`; every dumped frame must come back classified.
#
# Usage: scripts/smoke.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== [1/7] lint: ember_lint + ember_analyze + clang-tidy =="
python3 scripts/ember_lint.py src
python3 scripts/ember_analyze.py src
python3 tests/lint/test_ember_lint.py
python3 tests/analyze/test_ember_analyze.py
cmake -B build -S . >/dev/null
scripts/run_clang_tidy.sh build

echo "== [2/7] Release build + full test suite =="
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== [3/7] TSan build + threaded-kernel tests =="
cmake -B build-tsan -S . -DEMBER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  test_thread_pool test_snap_symmetric_kernel test_md_dynamics \
  test_md_step_loop test_obs_metrics test_obs_trace \
  test_io_embt1 test_io_async_writer test_io_driver_parity \
  test_app_interpreter
TSAN_OPTIONS="suppressions=$PWD/scripts/suppressions/tsan.supp" \
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ThreadedForces|ComputeContext|SymmetricKernel|TwoJmaxSweep|Dynamics|CrossDriver|StepLoopTimers|StepLoopTrace|ObsMetrics|ObsTrace|AsyncIo|Embt1'

echo "== [4/7] bench_record =="
cmake --build build -j "$JOBS" --target bench_record
if command -v python3 >/dev/null; then
  python3 -m json.tool BENCH_headline.json >/dev/null
  # Thread counts beyond the hardware stay in the recording (stamped
  # "oversubscribed" by bench_headline), but a smoke run on a small
  # container should say so out loud rather than silently bless a flat
  # scaling curve.
  OVERSUB="$(python3 - <<'EOF'
import json
doc = json.load(open("BENCH_headline.json"))
n = sum(1 for k in doc.get("kernels", [])
        for e in k.get("grind_time", []) if e.get("oversubscribed"))
print(n)
EOF
)"
  if [ "$OVERSUB" -gt 0 ]; then
    echo "smoke: WARNING: $OVERSUB oversubscribed grind_time entries in" \
         "BENCH_headline.json (threads > hardware_threads); the scaling" \
         "columns beyond the core count measure interleaving, not speedup."
  fi
fi

echo "== [5/7] traced demo run =="
TRACE_TMP="$(mktemp -d)"
(cd "$TRACE_TMP" && EMBER_NUM_THREADS=2 \
  "$OLDPWD/build/src/app/ember_run" "$OLDPWD/examples/inputs/trace_demo.in")
if command -v python3 >/dev/null; then
  python3 -m json.tool "$TRACE_TMP/trace_demo.json" >/dev/null
  python3 -m json.tool "$TRACE_TMP/metrics_demo.json" >/dev/null
fi
rm -rf "$TRACE_TMP"

echo "== [6/7] socket transport: forked-process subset + example =="
ctest --test-dir build --output-on-failure -j "$JOBS" -R Socket
SOCK_TMP="$(mktemp -d)"
(cd "$SOCK_TMP" && EMBER_TRANSPORT=socket \
  "$OLDPWD/build/src/app/ember_run" \
  "$OLDPWD/examples/inputs/multiprocess_scaling.in")
rm -rf "$SOCK_TMP"

echo "== [7/7] trajectory round-trip: async EMBT1 dump -> analyze =="
TRAJ_TMP="$(mktemp -d)"
(cd "$TRAJ_TMP" &&
  "$OLDPWD/build/src/app/ember_run" \
    "$OLDPWD/examples/inputs/trajectory_demo.in" | tee run.log
  grep -q "analyzed 4 frames from trajectory_demo.embt1" run.log)
rm -rf "$TRAJ_TMP"

echo "smoke: all green"
