#!/usr/bin/env python3
"""ember_lint: project-invariant checks clang-tidy cannot express.

The rules encode contracts this codebase relies on for correctness at
scale (DESIGN.md section 11):

  naked-new / naked-delete
      All ownership in src/ goes through smart pointers or containers; a
      raw new/delete is either a leak-in-waiting or a double-free-in-
      waiting. (Deleted special members, `= delete`, are fine.)
  atomic-memory-order
      Every std::atomic load/store/RMW must spell its memory order. The
      lock-free metrics registry and the thread pool were audited order
      by order; an implicit seq_cst hides the reasoning and costs cycles
      on the hot path.
  neighbor-span-index
      Neighbor spans returned by NeighborList::neighbors(i) are iterated
      with range-for in kernel hot loops, never indexed with unchecked
      operator[]: a stale index into a rebuilt list is the classic silent
      corruption in MD codes.
  obs-span-early-return
      A bare { } block whose first statement is EMBER_OBS_SPAN is an
      instrumentation scope; a `return` inside one leaks control flow out
      of a region the trace claims completed, and under EMBER_OBS=OFF
      the block silently changes meaning.
  timer-switch-exhaustive
      Any switch over TimerCategory must list all five enumerators
      (Pair, Neigh, Comm, Other, Dump) and carry no default:, so adding
      a category is a compile-time (and lint-time) event, never a
      silently mis-bucketed timer.
  blocking-io-in-steploop
      Code that participates in the step loop (any file outside src/io/
      that names StepLoop or StepStages) must not open output streams or
      call the path-level serializers directly: scheduled output goes
      through io::Writer requests, so the async backend can take the
      write off the stepping thread. A bare std::ofstream in a driver is
      a stall the Dump timer cannot see. (Reads — std::ifstream,
      read_checkpoint — are fine: restarts are not on the hot path.)
  comm-backend-include
      comm/communicator.hpp and comm/socket_transport.hpp are backend
      implementation headers, private to src/comm/. Everything else
      programs against the comm/transport.hpp interface and obtains a
      backend through comm::make_context, so drivers stay portable
      across thread-rank and process-rank execution.
  simd-intrinsics-include
      <immintrin.h> (and the other x86 intrinsics headers) may be
      included only by the per-ISA translation units in src/snap/simd/.
      Everything else uses the runtime-dispatched SimdOps table via
      snap/simd/dispatch.hpp, so the rest of the tree stays portable and
      builds without any -m<isa> flags.

Suppressions must carry a reason:

    // ember-lint: allow(<rule-id>) -- <why this site is exempt>

on the offending line or in the comment block directly above it. An
allow() without a reason is itself reported.

Usage: scripts/ember_lint.py [paths...]        (default: src)
       scripts/ember_lint.py --list-rules
Exit status 1 when findings are reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "naked-new": "raw `new` outside smart-pointer/container ownership",
    "naked-delete": "raw `delete` (deleted special members are exempt)",
    "atomic-memory-order": "std::atomic operation without an explicit memory order",
    "neighbor-span-index": "unchecked operator[] on a NeighborList neighbor span",
    "obs-span-early-return": "return inside a bare EMBER_OBS_SPAN instrumentation block",
    "timer-switch-exhaustive": "switch over TimerCategory missing enumerators or using default:",
    "blocking-io-in-steploop": "direct file output in step-loop code: submit an io::Writer request",
    "comm-backend-include": "comm backend header included outside src/comm/",
    "simd-intrinsics-include": "x86 intrinsics header included outside src/snap/simd/",
}

SOURCE_SUFFIXES = {".cpp", ".cc", ".hpp", ".h"}

ALLOW_RE = re.compile(
    r"ember-lint:\s*allow\((?P<rule>[a-z-]+)\)(?:\s*--\s*(?P<reason>\S.*))?")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> str:
    """Blank out comments, string and char literals, preserving layout.

    Every replaced character becomes a space so line numbers and column
    offsets in the stripped text match the original exactly.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Raw string literal: R"delim( ... )delim"
            if quote == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i)
                    end = (end + len(close)) if end != -1 else n
                    for k in range(i, min(end, n)):
                        if text[k] != "\n":
                            out[k] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def find_matching(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index of the bracket matching text[open_pos], or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def allowed(raw_lines: list[str], line: int, rule: str,
            findings: list[Finding], path: Path) -> bool:
    """True when line (1-based) carries a matching allow annotation, on the
    line itself or in the contiguous comment block directly above."""
    candidates = [line]
    k = line - 1
    while k >= 1 and raw_lines[k - 1].lstrip().startswith("//"):
        candidates.append(k)
        k -= 1
    for cand in candidates:
        m = ALLOW_RE.search(raw_lines[cand - 1])
        if m and m.group("rule") == rule:
            if not m.group("reason"):
                findings.append(Finding(
                    path, cand, rule,
                    "allow() annotation must carry a reason: "
                    "`// ember-lint: allow(%s) -- <reason>`" % rule))
                return True  # suppress the original finding, report the bare allow
            return True
    return False


# ---------------------------------------------------------------- rules ----

NEW_RE = re.compile(r"\bnew\b(?!\s*\()\s*[\w:<(]|\bnew\s*\(")
DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b\s*(\[\s*\])?\s*[\w:*(]")
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def check_naked_new_delete(path, raw_lines, code, findings):
    for m in NEW_RE.finditer(code):
        ln = line_of(code, m.start())
        if not allowed(raw_lines, ln, "naked-new", findings, path):
            findings.append(Finding(
                path, ln, "naked-new",
                "raw `new`: own memory via std::make_unique/containers"))
    for m in re.finditer(r"\bdelete\b", code):
        ln = line_of(code, m.start())
        lo = max(0, m.start() - 16)
        if DELETED_FN_RE.search(code[lo:m.end()]):
            continue  # `= delete` special member
        if not allowed(raw_lines, ln, "naked-delete", findings, path):
            findings.append(Finding(
                path, ln, "naked-delete",
                "raw `delete`: ownership must be RAII-managed"))


# `.clear(` / `.wait(` are deliberately absent: they collide with
# std::vector::clear and std::condition_variable::wait, and this codebase
# uses no std::atomic_flag.
ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set)"
    r"\s*\(")


def check_atomic_memory_order(path, raw_lines, code, findings):
    for m in ATOMIC_OP_RE.finditer(code):
        open_pos = m.end() - 1
        close_pos = find_matching(code, open_pos, "(", ")")
        args = code[open_pos + 1:close_pos]
        if "memory_order" in args:
            continue
        ln = line_of(code, m.start())
        if not allowed(raw_lines, ln, "atomic-memory-order", findings, path):
            findings.append(Finding(
                path, ln, "atomic-memory-order",
                f"`.{m.group(1)}(...)` without an explicit std::memory_order"))


NEIGHBOR_DIRECT_RE = re.compile(r"\bneighbors\s*\(")
NEIGHBOR_BIND_RE = re.compile(
    r"(?:auto|std::span<[^;=\n]*Entry[^;=\n]*>)\s*[&\s]*\b(\w+)\s*=\s*"
    r"[\w.\->()\[\]]*\bneighbors\s*\(")


def check_neighbor_span_index(path, raw_lines, code, findings):
    # Direct indexing of the returned span: nl.neighbors(i)[k]
    for m in NEIGHBOR_DIRECT_RE.finditer(code):
        close = find_matching(code, m.end() - 1, "(", ")")
        after = code[close + 1:close + 8]
        if after.lstrip().startswith("["):
            ln = line_of(code, m.start())
            if not allowed(raw_lines, ln, "neighbor-span-index", findings, path):
                findings.append(Finding(
                    path, ln, "neighbor-span-index",
                    "direct operator[] on neighbors(...): iterate with "
                    "range-for or bounds-check the index"))
    # Indexing a variable bound to a neighbor span, within the same scope
    # (approximated as: until the enclosing brace block closes).
    for m in NEIGHBOR_BIND_RE.finditer(code):
        var = m.group(1)
        depth = code.count("{", 0, m.start()) - code.count("}", 0, m.start())
        idx_re = re.compile(r"\b" + re.escape(var) + r"\s*\[")
        pos = m.end()
        while pos < len(code):
            ch = code[pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth < 0:
                    break
            im = idx_re.match(code, pos)
            if im:
                # A dominating `idx < var.size()` bound (e.g. the loop
                # condition) makes the access checked; only flag unchecked
                # ones.
                bracket_close = find_matching(code, im.end() - 1, "[", "]")
                idx_expr = code[im.end():bracket_close].strip()
                guard_re = re.compile(
                    re.escape(idx_expr) + r"\s*(?:<|!=)\s*" + re.escape(var) +
                    r"\s*\.\s*size\s*\(\s*\)")
                if not idx_expr or not guard_re.search(code[m.end():pos]):
                    ln = line_of(code, pos)
                    if not allowed(raw_lines, ln, "neighbor-span-index",
                                   findings, path):
                        findings.append(Finding(
                            path, ln, "neighbor-span-index",
                            f"unchecked operator[] on neighbor span `{var}`: "
                            "iterate with range-for or guard the index "
                            f"against {var}.size()"))
                pos = bracket_close + 1
                continue
            pos += 1


OBS_SPAN_RE = re.compile(r"\bEMBER_OBS_SPAN(?:_ARG)?\s*\(")


def check_obs_span_early_return(path, raw_lines, code, findings):
    code_lines = code.split("\n")
    for m in OBS_SPAN_RE.finditer(code):
        span_line = line_of(code, m.start())
        # Find the opening brace of the enclosing scope.
        depth = 0
        open_pos = -1
        for i in range(m.start() - 1, -1, -1):
            if code[i] == "}":
                depth += 1
            elif code[i] == "{":
                if depth == 0:
                    open_pos = i
                    break
                depth -= 1
        if open_pos < 0:
            continue
        # Instrumentation block: the scope opener is a bare `{` line and
        # the span macro is its first statement.
        open_line = line_of(code, open_pos)
        if code_lines[open_line - 1].strip() != "{":
            continue
        between = code[open_pos + 1:m.start()]
        if between.strip():
            continue  # span is not the first statement
        close_pos = find_matching(code, open_pos, "{", "}")
        block = code[open_pos:close_pos]
        for rm in re.finditer(r"\breturn\b", block):
            ln = line_of(code, open_pos + rm.start())
            if not allowed(raw_lines, ln, "obs-span-early-return",
                           findings, path):
                findings.append(Finding(
                    path, ln, "obs-span-early-return",
                    f"return inside the EMBER_OBS_SPAN block opened at line "
                    f"{span_line}: hoist the early return out of the "
                    "instrumentation scope"))


SWITCH_RE = re.compile(r"\bswitch\s*\(")
TIMER_ENUMERATORS = ("Pair", "Neigh", "Comm", "Other", "Dump")


def check_timer_switch_exhaustive(path, raw_lines, code, findings):
    for m in SWITCH_RE.finditer(code):
        paren_close = find_matching(code, m.end() - 1, "(", ")")
        brace_open = code.find("{", paren_close)
        if brace_open < 0:
            continue
        body = code[brace_open:find_matching(code, brace_open, "{", "}") + 1]
        if "TimerCategory::" not in body:
            continue
        ln = line_of(code, m.start())
        cases = set(re.findall(r"case\s+TimerCategory::(\w+)", body))
        missing = [e for e in TIMER_ENUMERATORS if e not in cases]
        if missing and not allowed(raw_lines, ln, "timer-switch-exhaustive",
                                   findings, path):
            findings.append(Finding(
                path, ln, "timer-switch-exhaustive",
                "switch over TimerCategory missing case(s): "
                + ", ".join(missing)))
        if re.search(r"\bdefault\s*:", body) and not allowed(
                raw_lines, ln, "timer-switch-exhaustive", findings, path):
            findings.append(Finding(
                path, ln, "timer-switch-exhaustive",
                "switch over TimerCategory must not use default: "
                "(new categories must fail to compile, not mis-bucket)"))


# The output pipeline (DESIGN.md section 13) hinges on one property: the
# stepping thread never blocks on a file. Any file that participates in
# the step loop — it names StepLoop or StepStages in code — must express
# output as io::Writer requests instead of opening streams or calling
# the path-level serializers itself, or the async backend silently
# degrades to sync for that path. src/io/ is exempt (it IS the writer),
# and input streams are exempt (restarts run off the hot path).
STEPLOOP_RE = re.compile(r"\b(?:StepLoop|StepStages)\b")
BLOCKING_IO_RE = re.compile(
    r"std::ofstream|std::fstream\b|\bfopen\s*\(|"
    r"\b(?:md|io)::write_(?:xyz|checkpoint_batch|checkpoint)\s*\(")


def check_blocking_io_in_steploop(path, raw_lines, code, findings):
    posix = path.as_posix()
    if "src/io/" in posix or posix.startswith("src/io"):
        return
    if not STEPLOOP_RE.search(code):
        return
    for m in BLOCKING_IO_RE.finditer(code):
        ln = line_of(code, m.start())
        if not allowed(raw_lines, ln, "blocking-io-in-steploop",
                       findings, path):
            findings.append(Finding(
                path, ln, "blocking-io-in-steploop",
                f"`{m.group(0).strip()}` in step-loop code: output must go "
                "through an io::Writer request so the async backend can "
                "take the write off the stepping thread"))


# The comm backends (thread mailboxes, socket processes) are private to
# src/comm/: everything else programs against comm/transport.hpp and
# obtains a backend through comm::make_context. This rule keeps backend
# headers from leaking back out. It scans raw lines, not stripped code,
# because strip_code blanks string literals -- which is exactly where an
# include path lives.
BACKEND_INCLUDE_RE = re.compile(
    r'#\s*include\s*"(comm/communicator\.hpp|comm/socket_transport\.hpp)"')


def check_comm_backend_include(path, raw_lines, code, findings):
    posix = path.as_posix()
    if "src/comm/" in posix or posix.startswith("src/comm"):
        return
    for idx, line in enumerate(raw_lines, start=1):
        m = BACKEND_INCLUDE_RE.search(line)
        if m and not allowed(raw_lines, idx, "comm-backend-include",
                             findings, path):
            findings.append(Finding(
                path, idx, "comm-backend-include",
                '`#include "%s"` outside src/comm/: comm backends are '
                "private; include comm/transport.hpp and construct through "
                "comm::make_context instead" % m.group(1)))


# SIMD intrinsics stay behind the runtime dispatcher: only the per-ISA
# kernel TUs in src/snap/simd/ may include the x86 intrinsics headers
# (they are the only files compiled with -m<isa> flags; an intrinsic
# anywhere else would either fail to build or, worse, emit illegal
# instructions on older hosts). Raw lines again, since strip_code blanks
# the include path string.
INTRIN_INCLUDE_RE = re.compile(
    r"#\s*include\s*[<\"]("
    r"immintrin\.h|x86intrin\.h|xmmintrin\.h|emmintrin\.h|pmmintrin\.h|"
    r"tmmintrin\.h|smmintrin\.h|nmmintrin\.h|wmmintrin\.h|avxintrin\.h|"
    r"avx2intrin\.h|avx512fintrin\.h"
    r")[>\"]")


def check_simd_intrinsics_include(path, raw_lines, code, findings):
    posix = path.as_posix()
    if "src/snap/simd/" in posix or posix.startswith("src/snap/simd"):
        return
    for idx, line in enumerate(raw_lines, start=1):
        m = INTRIN_INCLUDE_RE.search(line)
        if m and not allowed(raw_lines, idx, "simd-intrinsics-include",
                             findings, path):
            findings.append(Finding(
                path, idx, "simd-intrinsics-include",
                "`#include <%s>` outside src/snap/simd/: intrinsics are "
                "confined to the per-ISA kernel TUs; program against "
                "snap/simd/dispatch.hpp instead" % m.group(1)))


CHECKS = [
    check_naked_new_delete,
    check_atomic_memory_order,
    check_neighbor_span_index,
    check_obs_span_early_return,
    check_timer_switch_exhaustive,
    check_blocking_io_in_steploop,
    check_comm_backend_include,
    check_simd_intrinsics_include,
]


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.split("\n")
    code = strip_code(text)
    findings: list[Finding] = []
    for check in CHECKS:
        check(path, raw_lines, code, findings)
    return findings


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(f for f in sorted(path.rglob("*"))
                         if f.suffix in SOURCE_SUFFIXES and f.is_file())
        else:
            print(f"ember_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:24s} {desc}")
        return 0

    findings: list[Finding] = []
    files = collect_files(args.paths or ["src"])
    for f in files:
        findings.extend(lint_file(f))

    findings.sort(key=lambda fi: (str(fi.path), fi.line, fi.rule))
    for fi in findings:
        print(fi)
    if findings:
        print(f"ember_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"ember_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit with the
        # conventional 128+SIGPIPE instead of a traceback.
        sys.exit(141)
