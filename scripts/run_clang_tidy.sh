#!/usr/bin/env bash
# clang-tidy over every src/ translation unit in the compilation database
# (.clang-tidy at the repo root holds the tuned check set; any finding is
# fatal via WarningsAsErrors).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]      (default: build)
#
# The build dir must contain compile_commands.json — every configure
# exports it (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
#
# Exit status: 0 clean or skipped (tool absent), 1 when clang-tidy
# reports findings. The finding scan is explicit — it does not trust
# clang-tidy's own exit code, which historically returned 0 for
# warnings-promoted-to-errors under --quiet on some versions, letting
# CI go green on real findings. Findings are counted from the captured
# diagnostics, so a crash of one invocation also fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: SKIPPED — '$TIDY' is not installed (the minimal" >&2
  echo "run_clang_tidy: dev container ships only gcc; the CI lint job" >&2
  echo "run_clang_tidy: installs clang-tidy and runs this for real)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD/compile_commands.json missing; configuring" >&2
  cmake -B "$BUILD" -S . >/dev/null
fi

mapfile -t FILES < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: ${#FILES[@]} translation units, $(command -v "$TIDY")"

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT
# Run every TU even after a failure so the log holds the full picture;
# the explicit scan below decides the exit status.
XARGS_RC=0
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD" --quiet >"$LOG" 2>&1 ||
  XARGS_RC=$?

FINDINGS="$(grep -cE '(warning|error):' "$LOG" || true)"
if [ "$FINDINGS" -gt 0 ] || [ "$XARGS_RC" -ne 0 ]; then
  cat "$LOG"
  echo "run_clang_tidy: FAILED — $FINDINGS finding line(s)," \
       "xargs exit $XARGS_RC" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
