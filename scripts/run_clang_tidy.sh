#!/usr/bin/env bash
# clang-tidy over every src/ translation unit in the compilation database
# (.clang-tidy at the repo root holds the tuned check set; any finding is
# fatal via WarningsAsErrors).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]      (default: build)
#
# The build dir must contain compile_commands.json — every configure
# exports it (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
# When clang-tidy is not installed (the minimal dev container ships only
# gcc) the script skips with a notice and exit 0 so local smoke runs
# stay usable; the CI lint job installs clang-tidy and runs this for real.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found; skipping (CI's lint job runs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD/compile_commands.json missing; configuring" >&2
  cmake -B "$BUILD" -S . >/dev/null
fi

mapfile -t FILES < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: ${#FILES[@]} translation units, $(command -v "$TIDY")"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD" --quiet
echo "run_clang_tidy: clean"
