// ParSplice demo: accelerate state-to-state dynamics on a disordered
// multi-well landscape by parallelizing over time (deck §26-52).
//
// Compares direct MD against ParSplice with 8 virtual workers at a
// temperature where escapes are rare, then prints the oracle's learned
// picture of the state network.

#include <cstdio>

#include "parsplice/parsplice.hpp"

int main() {
  using namespace ember::parsplice;

  Landscape land(4, 1.0, 0.06, 7);
  std::printf("Landscape: %d wells, barrier %.1f, mild disorder\n",
              land.num_states(), land.barrier());

  ParSpliceConfig cfg;
  cfg.temperature = 0.15;
  cfg.nworkers = 8;
  cfg.wall_budget = 300.0;

  std::printf("\nDirect MD for a wall budget of %.0f time units:\n",
              cfg.wall_budget);
  const auto md = run_md_reference(land, cfg);
  std::printf("  physical time: %8.1f   transitions: %ld   states: %d\n",
              md.physical_time, md.transitions, md.states_visited);

  std::printf("\nParSplice, %d workers, same wall budget:\n", cfg.nworkers);
  const auto ps = run_parsplice(land, cfg);
  std::printf("  spliced time:  %8.1f   transitions: %ld   states: %d\n",
              ps.spliced_time, ps.transitions, ps.states_visited);
  std::printf("  generated:     %8.1f   segments: %ld spliced / %ld made\n",
              ps.generated_time, ps.segments_spliced, ps.segments_generated);
  std::printf("  utilization:   %7.1f%%   speedup vs MD: %.2fx\n",
              100.0 * ps.utilization(), ps.speedup());

  std::printf(
      "\nThe speedup approaches the worker count when events are rare —\n"
      "wall-clock parallelization over TIME, which spatial domain\n"
      "decomposition cannot provide for small systems (deck: 'Can we\n"
      "parallelize over time instead?').\n");
  return 0;
}
