// Quickstart: run SNAP molecular dynamics on a small carbon crystal.
//
// Demonstrates the minimal public-API path:
//   build a lattice -> train-or-load a SNAP model -> Simulation -> run.
// Here we skip training (see fit_snap.cpp for that) and use a small
// hand-seeded model so the example runs in seconds.

#include <cstdio>
#include <memory>

#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "snap/snap_potential.hpp"

int main() {
  using namespace ember;

  // 1. A 2x2x2 diamond-cubic carbon cell (64 atoms), thermalized at 300 K.
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.567;  // ambient lattice constant [A]
  spec.nx = spec.ny = spec.nz = 2;
  md::System system = md::build_lattice(spec, 12.011);

  Rng rng(2021);
  system.thermalize(300.0, rng);

  // 2. A linear SNAP model: 2J = 8 gives the paper's 55 bispectrum
  //    components. Coefficients here are a smooth placeholder set; a
  //    trained carbon model comes from the fit_snap example.
  snap::SnapParams params;
  params.twojmax = 8;
  params.rcut = 2.6;
  params.bzero_flag = true;
  snap::SnapModel model;
  model.params = params;
  model.beta.assign(snap::SnapIndex(params.twojmax).num_b(), 0.0);
  Rng beta_rng(7);
  for (auto& b : model.beta) b = 0.002 * beta_rng.uniform(-1.0, 1.0);

  // 3. MD with velocity Verlet at dt = 0.25 fs, adjoint force path.
  md::Simulation sim(std::move(system),
                     std::make_shared<snap::SnapPotential>(model), 2.5e-4,
                     0.4, 2021);
  sim.setup();
  const double e0 = sim.total_energy();
  std::printf("step      E_total [eV]      T [K]    P [bar]\n");
  for (int block = 0; block < 5; ++block) {
    sim.run(40);
    std::printf("%4ld  %16.6f  %8.1f  %10.1f\n", sim.step(),
                sim.total_energy(), sim.system().temperature(),
                sim.pressure());
  }
  std::printf("\nNVE drift: %.2e eV/atom over %ld steps\n",
              std::abs(sim.total_energy() - e0) / sim.system().nlocal(),
              sim.step());
  std::printf("SNAP FLOPs of the last force call: %.3g\n",
              dynamic_cast<snap::SnapPotential&>(sim.potential()).last_flops());
  return 0;
}
