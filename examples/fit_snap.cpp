// FitSNAP-lite end to end: train a linear SNAP carbon model against the
// Tersoff oracle (standing in for the paper's DFT training data), report
// train/test errors, save the model, reload it, and run MD with it.

#include <cstdio>
#include <memory>

#include "fit/trainer.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_tersoff.hpp"
#include "snap/snap_potential.hpp"

int main() {
  using namespace ember;

  snap::SnapParams params;
  params.twojmax = 6;  // 30 components: fast to train in an example
  params.rcut = 2.8;

  ref::PairTersoff oracle;
  fit::Trainer train_set(params, fit::FitOptions{200.0, 1.0, 1e-9});
  fit::Trainer test_set(params, fit::FitOptions{200.0, 1.0, 1e-9});

  std::printf("Labelling training configurations with the Tersoff oracle...\n");
  // Stratified split: the generator cycles four config types, so a
  // stride-5 split places every type in both sets.
  const auto configs = fit::standard_carbon_configs(20, 42);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    (c % 5 == 4 ? test_set : train_set).add_config(configs[c], oracle);
  }
  std::printf("  %d train / %d test configurations\n",
              train_set.num_configs(), test_set.num_configs());

  std::printf("Solving the ridge regression (energies + forces)...\n");
  const snap::SnapModel model = train_set.fit();

  const auto train_m = train_set.evaluate(model);
  const auto test_m = test_set.evaluate(model);
  std::printf("  train: E rmse %.4f eV/atom, F rmse %.3f eV/A "
              "(label rms %.3f)\n",
              train_m.energy_rmse_per_atom, train_m.force_rmse,
              train_m.force_rms_label);
  std::printf("  test : E rmse %.4f eV/atom, F rmse %.3f eV/A "
              "(label rms %.3f)\n",
              test_m.energy_rmse_per_atom, test_m.force_rmse,
              test_m.force_rms_label);

  const std::string path = "/tmp/ember_carbon.snap";
  model.save(path);
  const auto loaded = snap::SnapModel::load(path);
  std::printf("Model saved to %s (twojmax=%d, %zu coefficients)\n",
              path.c_str(), loaded.params.twojmax, loaded.beta.size());

  // Short MD with the trained surrogate, starting from compressed diamond.
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.45;
  spec.nx = spec.ny = spec.nz = 2;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(3);
  sys.thermalize(500.0, rng);
  md::Simulation sim(std::move(sys),
                     std::make_shared<snap::SnapPotential>(loaded), 2e-4,
                     0.4, 3);
  sim.integrator().set_langevin(md::LangevinParams{500.0, 0.1});
  sim.run(100);
  std::printf("Trained-SNAP MD: 100 steps, T = %.0f K, P = %.2f Mbar\n",
              sim.system().temperature(), sim.pressure() / 1e6);
  return 0;
}
