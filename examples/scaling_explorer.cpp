// Scaling explorer: interactive-style tour of the calibrated machine
// model. Answers the planning questions the paper's team faced: how many
// nodes does a target simulation rate require, where does strong scaling
// stop paying, and what does the time breakdown look like there.

#include <cstdio>

#include "common/table.hpp"
#include "perf/scaling.hpp"

int main() {
  using namespace ember;
  perf::ScalingModel model(perf::MachineModel::summit());

  std::printf("== How many Summit nodes for 1 ns/day? ==\n");
  std::printf("(1 G atoms, 0.5 fs timestep -> need ~23.1 steps/s)\n\n");
  const double natoms = 1.024192512e9;
  TextTable table({"Nodes", "steps/s", "ns/day", "Matom-steps/node-s",
                   "Comm %"});
  for (const int nodes : {64, 128, 256, 512, 1024, 2048, 4650}) {
    const auto run = model.predict(natoms, nodes);
    const double steps_per_s = 1.0 / run.step_time();
    table.add_row(nodes, steps_per_s, steps_per_s * 0.5e-6 * 86400.0,
                  run.matom_steps_per_node_s(),
                  100.0 * run.comm_fraction());
  }
  table.print();

  std::printf("\n== Where does strong scaling stop paying? ==\n");
  std::printf("(50%% parallel-efficiency point vs the smallest fit)\n\n");
  TextTable table2({"Atoms", "Min nodes", "Nodes at 50% eff",
                    "Max useful speedup"});
  for (const double n : {1e7, 1e8, 1e9, 2e10}) {
    const int lo = model.min_nodes(n);
    int n50 = lo;
    for (int nodes = lo; nodes <= 4650; nodes = std::max(nodes + 1, nodes * 5 / 4)) {
      if (model.parallel_efficiency(n, lo, nodes) < 0.5) break;
      n50 = nodes;
    }
    table2.add_row(n, lo, n50,
                   model.predict(n, n50).matom_steps_per_node_s() * n50 /
                       (model.predict(n, lo).matom_steps_per_node_s() * lo));
  }
  table2.print();

  std::printf(
      "\nThe small-system rows show the deck's 'timescale problem': more\n"
      "nodes stop helping long before experimentally relevant rates are\n"
      "reached — the motivation for ParSplice (see parsplice_demo).\n");
  return 0;
}
