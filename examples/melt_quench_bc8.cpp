// The science pipeline of the paper at example scale:
//   1. prepare amorphous carbon by melt-quench (Tersoff oracle),
//   2. compress and anneal at extreme conditions,
//   3. watch the phase classifier for crystalline signatures.
//
// The paper did this with 10^9 atoms and a nanosecond of sampling on
// Summit, observing a-C -> BC8 at ~12 Mbar / 5000 K. At example scale the
// transformation itself is far beyond reach; what this program
// demonstrates is the full production toolchain: preparation protocol,
// pressure control, trajectory I/O and on-the-fly phase detection.

#include <cstdio>
#include <memory>

#include "analysis/classify.hpp"
#include "common/units.hpp"
#include "md/computes.hpp"
#include "md/io.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "ref/pair_tersoff.hpp"

namespace {

void report(const char* stage, ember::md::Simulation& sim) {
  const auto f = ember::analysis::analyze(sim.system());
  std::printf("%-22s T=%6.0f K  P=%7.2f Mbar  diamond %5.1f%%  bc8 %5.1f%%  "
              "disordered %5.1f%%\n",
              stage, sim.system().temperature(),
              sim.pressure() / ember::units::MBAR, 100 * f.diamond,
              100 * f.bc8, 100 * (1 - f.crystalline()));
}

}  // namespace

int main() {
  using namespace ember;

  // Expanded diamond cell (~3 g/cc): standard a-C preparation density.
  md::LatticeSpec spec;
  spec.kind = md::LatticeKind::Diamond;
  spec.a = 3.70;
  spec.nx = spec.ny = spec.nz = 2;
  md::System sys = md::build_lattice(spec, 12.011);
  Rng rng(99);
  sys.thermalize(300.0, rng);

  md::Simulation sim(std::move(sys), std::make_shared<ref::PairTersoff>(),
                     2e-4, 0.4, 99);
  sim.setup();
  report("initial crystal", sim);

  // --- melt ---
  sim.integrator().set_langevin(md::LangevinParams{12000.0, 0.02});
  md::Msd msd;
  msd.set_reference(sim.system());
  sim.run(5000);
  report("melt (12,000 K)", sim);
  std::printf("%-22s MSD = %.1f A^2 (topological melt needs > bond^2)\n",
              "", msd.compute(sim.system()));

  // --- quench to a-C ---
  sim.integrator().set_langevin(md::LangevinParams{300.0, 0.01});
  sim.run(4000);
  report("quenched a-C", sim);
  md::write_xyz(sim.system(), "/tmp/ember_ac_sample.xyz", "amorphous carbon");

  // --- compress toward the BC8 regime and anneal hot ---
  sim.integrator().set_langevin(md::LangevinParams{5000.0, 0.05});
  // Carbon's compressibility is ~2e-7 1/bar; tau short for a fast ramp.
  sim.integrator().set_berendsen_p(
      md::BerendsenPParams{12.0 * units::MBAR, 0.05, 2e-7});
  const double v0 = sim.system().box().volume();
  for (int block = 0; block < 10; ++block) {
    sim.run(500);
  }
  report("12 Mbar / 5000 K anneal", sim);
  std::printf("%-22s V/V0 = %.2f (extreme compression)\n", "",
              sim.system().box().volume() / v0);

  // --- the detector on the target phase, demonstrated explicitly ---
  md::LatticeSpec bc8;
  bc8.kind = md::LatticeKind::Bc8;
  bc8.a = 4.46;
  bc8.nx = bc8.ny = bc8.nz = 2;
  md::System target = md::build_lattice(bc8, 12.011);
  const auto f = analysis::analyze(target);
  std::printf("%-22s bc8 %.1f%% (the signature the production run watches "
              "for)\n",
              "ideal BC8 reference", 100 * f.bc8);

  std::printf(
      "\nAt paper scale this protocol, run for ~1 ns on 10^9 atoms, shows\n"
      "the bc8 fraction rising from 0 toward 1 (Fig. 7's performance\n"
      "signature). a-C snapshot written to /tmp/ember_ac_sample.xyz.\n");
  return 0;
}
